"""The :class:`WorkloadSpec` API shared by run/bench/serve.

A workload is a named, seeded, restartable traffic generator: the same
spec always yields the same frame sequence, which is what lets the
serving daemon's offline replay, the bench harness and the differential
tests all agree on the traffic under test. Specs parse from the CLI
syntax::

    <kind>:key=value,key=value,...
    tcp-handshake:packets=20000,flows=1000000,seed=3
    tunnel-encap:packets=5000,flows=200000,vnis=8

Generator-specific knobs (``churn``, ``vnis``, ``data_packets``...) ride
in :attr:`WorkloadSpec.params`; unknown keys are rejected by the
generator that receives them, so typos fail loudly at parse/build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

_INT_FIELDS = {"packets", "flows", "size", "seed"}
_ALIASES = {"dist": "distribution", "size": "packet_size",
            "exponent": "zipf_exponent"}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parsed description of one workload (see module docstring)."""

    kind: str = "udp-zipf"
    packets: int = 10_000
    flows: int = 1_000
    distribution: str = "zipf"     # "uniform" | "zipf"
    zipf_exponent: float = 1.0
    packet_size: int = 64
    seed: int = 1
    # Generator-specific options, kept sorted so equal specs hash equal.
    params: Tuple[Tuple[str, str], ...] = ()

    def param(self, key: str, default: str = "") -> str:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def param_int(self, key: str, default: int) -> int:
        value = self.param(key)
        return int(value, 0) if value else default

    def param_float(self, key: str, default: float) -> float:
        value = self.param(key)
        return float(value) if value else default

    def describe(self) -> str:
        extras = "".join(f",{k}={v}" for k, v in self.params)
        return (
            f"{self.kind}:packets={self.packets},flows={self.flows},"
            f"dist={self.distribution},size={self.packet_size},"
            f"seed={self.seed}"
            + (f",exponent={self.zipf_exponent}"
               if self.distribution == "zipf" else "")
            + extras
        )


def parse_workload_spec(text: str) -> WorkloadSpec:
    """Parse a ``--workload`` argument (``<kind>:k=v,...``)."""
    text = text.strip()
    kind, _, rest = text.partition(":")
    if not kind:
        raise ValueError(f"workload spec {text!r} has no kind")
    spec = WorkloadSpec(kind=kind)
    params: Dict[str, str] = {}
    for item in rest.split(",") if rest else []:
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"workload option {item!r} is not key=value")
        fname = _ALIASES.get(key, key)
        if fname in WorkloadSpec.__dataclass_fields__ and fname not in (
            "kind", "params"
        ):
            if key in _INT_FIELDS or fname == "packets":
                spec = replace(spec, **{fname: int(value, 0)})
            elif fname == "zipf_exponent":
                spec = replace(spec, **{fname: float(value)})
            else:
                spec = replace(spec, **{fname: value})
        else:
            params[key] = value
    if params:
        spec = replace(spec, params=tuple(sorted(params.items())))
    if spec.distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown distribution {spec.distribution!r}")
    if spec.packets < 1:
        raise ValueError("workload needs packets >= 1")
    if spec.flows < 1:
        raise ValueError("workload needs flows >= 1")
    return spec
